module W = Debruijn.Word
module Nk = Debruijn.Necklace
module S = Netsim.Simulator

type t = {
  bstar : Bstar.t;
  successor : int array;
  cycle : int array;
  total_rounds : int;
  messages : int;
  trace : S.round_metrics array;
}

let schedule_length ~n = (5 * n) + 4

(* ------------------------------------------------------------------ *)
(* Local data carried through the phases. *)

type candidate = { cdist : int; cnode : int; cparent : int }
type entry = { digit : int; rep : int }
type fragment = (int * entry list) list

type msg =
  | Probe of { origin : int; hops : int }
  | Flood of int  (* sender's distance *)
  | Choose of { cand : candidate; chops : int }
  | Announce of { a_digit : int; child_rep : int; parent_rep : int }
  | Member of { mfrag : fragment; mhops : int }

type state = {
  live : bool;  (* my necklace is fault-free *)
  dist : int;  (* −1 = not reached *)
  parent : int;
  best : candidate option;  (* elected Y of my necklace *)
  frag : fragment;
  finished : bool;
}

let better a b = if a.cdist <> b.cdist then a.cdist < b.cdist else a.cnode < b.cnode

(* Declaration-order (digit, rep) lexicographic — the order polymorphic
   [compare] used to give, so merged fragments stay bit-identical. *)
let entry_compare a b =
  match Int.compare a.digit b.digit with 0 -> Int.compare a.rep b.rep | c -> c

let merge_fragment frag w entries =
  let existing = Option.value ~default:[] (List.assoc_opt w frag) in
  (w, List.sort_uniq entry_compare (entries @ existing)) :: List.remove_assoc w frag

let merge_fragments a b = List.fold_left (fun acc (w, es) -> merge_fragment acc w es) a b

(* The root necklace is recognizable locally: its elected candidate has
   no broadcast parent. *)
let is_root_necklace best = best.cparent < 0

let successor_of (p : W.params) v frag =
  let w = W.suffix p v in
  match List.assoc_opt w frag with
  | None -> W.rotl p v
  | Some entries ->
      let my_rep = Nk.canonical p v in
      let arr = Array.of_list (List.sort (fun a b -> Int.compare a.rep b.rep) entries) in
      let k = Array.length arr in
      let rec find i = if arr.(i).rep = my_rep then i else find (i + 1) in
      W.snoc p w arr.((find 0 + 1) mod k).digit

let run ?domains (bstar : Bstar.t) =
  let p = bstar.Bstar.p in
  let n = p.W.n in
  let root = bstar.Bstar.root in
  let faulty v = List.mem v bstar.Bstar.faults in
  let total = schedule_length ~n in
  (* phase boundaries (see the interface) *)
  let bcast_seed = n in
  let choose_start = (3 * n) + 2 in
  let exchange_round = (4 * n) + 3 in
  let member_start = (4 * n) + 4 in
  let proto : (state, msg) S.protocol =
    {
      initial =
        (fun v ->
          {
            live = false;
            dist = (if v = root then 0 else -1);
            parent = -1;
            best = None;
            frag = [];
            finished = false;
          });
      step =
        (fun ~round v st inbox ->
          let st = ref st in
          let sends = ref [] in
          let send dst m = sends := (dst, m) :: !sends in
          let broadcast m = List.iter (fun s -> send s m) (W.successors p v) in
          (* --- receive --- *)
          List.iter
            (fun (src, m) ->
              match m with
              | Probe { origin; hops } ->
                  if origin = v then st := { !st with live = true }
                  else if hops < n then
                    send (W.rotl p v) (Probe { origin; hops = hops + 1 })
              | Flood d ->
                  (* first receipt wins; the inbox is sorted by source so
                     simultaneous arrivals use the minimal sender *)
                  if !st.live && !st.dist < 0 then begin
                    st := { !st with dist = d + 1; parent = src };
                    broadcast (Flood (d + 1))
                  end
              | Choose { cand; chops } ->
                  (match !st.best with
                  | Some b when not (better cand b) -> ()
                  | _ -> st := { !st with best = Some cand });
                  if chops < n then
                    send (W.rotl p v) (Choose { cand; chops = chops + 1 })
              | Announce { a_digit; child_rep; parent_rep } -> (
                  match !st.best with
                  | None -> ()
                  | Some best ->
                      let my_rep = Nk.canonical p v in
                      let as_parent = parent_rep = my_rep in
                      let as_child = (not (is_root_necklace best)) && v = best.cnode in
                      if as_parent || as_child then begin
                        let w = W.prefix p v in
                        let entries =
                          { digit = W.last_digit p v; rep = my_rep }
                          :: { digit = a_digit; rep = child_rep }
                          ::
                          (if as_child then
                             [ { digit = W.first_digit p best.cparent;
                                 rep = Nk.canonical p best.cparent } ]
                           else [])
                        in
                        st := { !st with frag = merge_fragment !st.frag w entries }
                      end)
              | Member { mfrag; mhops } ->
                  st := { !st with frag = merge_fragments !st.frag mfrag };
                  if mhops < n then
                    send (W.rotl p v) (Member { mfrag; mhops = mhops + 1 }))
            inbox;
          (* --- scheduled actions --- *)
          if round = 0 then send (W.rotl p v) (Probe { origin = v; hops = 1 });
          if round = bcast_seed && v = root && !st.live then begin
            st := { !st with dist = 0 };
            broadcast (Flood 0)
          end;
          if round = choose_start && !st.live && !st.dist >= 0 then begin
            let cand = { cdist = !st.dist; cnode = v; cparent = !st.parent } in
            (match !st.best with
            | Some b when not (better cand b) -> ()
            | _ -> st := { !st with best = Some cand });
            send (W.rotl p v) (Choose { cand; chops = 1 })
          end;
          (if round = exchange_round then
             match !st.best with
             | Some best when (not (is_root_necklace best)) && W.rotl p v = best.cnode ->
                 broadcast
                   (Announce
                      {
                        a_digit = W.first_digit p v;
                        child_rep = Nk.canonical p v;
                        parent_rep = Nk.canonical p best.cparent;
                      })
             | _ -> ());
          (* Pattern-match, not polymorphic [<> []]/[<> None]: [frag]
             carries records and [best] an option, the exact structural
             shapes lint rule R2 bans comparing polymorphically. *)
          (if round = member_start then
             match (!st.frag, !st.best) with
             | (_ :: _ as mfrag), Some _ -> send (W.rotl p v) (Member { mfrag; mhops = 1 })
             | _ -> ());
          if round >= total then st := { !st with finished = true };
          (!st, !sends));
      wants_step = (fun st -> not st.finished);
    }
  in
  let r =
    S.run ?domains ~max_rounds:(total + 8) ~topology:(Lazy.force bstar.Bstar.graph) ~faulty
      proto
  in
  let successor = Array.make p.W.size (-1) in
  Array.iteri
    (fun v st -> if Option.is_some st.best then successor.(v) <- successor_of p v st.frag)
    r.S.states;
  let cycle =
    (* [of_successor_map_n], not [of_successor_map]: the ranged walk
       treats a −1 successor (a node the schedule never reached) as
       non-closure instead of indexing out of bounds. *)
    match
      Graphlib.Cycle.of_successor_map_n ~n:p.W.size ~start:root (fun v -> successor.(v))
    with
    | Some c -> c
    | None ->
        Pipeline_error.raise_error ~stage:"Selftimed"
          "schedule too short for this fault pattern"
  in
  {
    bstar;
    successor;
    cycle;
    total_rounds = r.S.rounds;
    messages = r.S.delivered;
    trace = r.S.trace;
  }
