module W = Debruijn.Word
module Nk = Debruijn.Necklace
module It = Graphlib.Itopo

type t = {
  p : W.params;
  graph : Graphlib.Digraph.t Lazy.t;
  faults : int list;
  necklace_faulty : bool array;
  in_bstar : bool array;
  size : int;
  root : int;
}

let succs p = fun x f -> W.iter_succs p x f
let preds p = fun x f -> W.iter_preds p x f

(* [members.(start .. start+len−1)] is the chosen component, [len > 0];
   [in_bstar] must be all-false on entry (fresh, or refilled by the
   workspace path). *)
let finish p faults necklace_faulty in_bstar members start len root_hint =
  (* One pass: mark membership and track the smallest member, which —
     being minimal on its necklace — is itself a representative. *)
  let best = ref max_int in
  for i = start to start + len - 1 do
    let v = members.(i) in
    in_bstar.(v) <- true;
    if v < !best then best := v
  done;
  let root =
    match root_hint with
    | Some h when h >= 0 && h < p.W.size && in_bstar.(Nk.canonical p h) ->
        Nk.canonical p h
    | _ -> !best
  in
  Some
    {
      p;
      graph = lazy (Debruijn.Graph.b p);
      faults;
      necklace_faulty;
      in_bstar;
      size = len;
      root;
    }

(* Successor-only sweeps below: the removed set is a union of
   necklaces, so every weak component is strongly connected (see the
   header above) — directed reachability from a seed already covers its
   whole weak component, at half the edge work of the symmetric
   closure. *)

let compute ?root_hint ?domains ?ws p ~faults =
  match ws with
  | None ->
      let necklace_faulty = Nk.mark_faulty_necklaces p faults in
      let members =
        It.largest_weak_component ?domains ~n:p.W.size ~succs:(succs p)
          ~preds:It.no_preds
          ~keep:(fun v -> not necklace_faulty.(v))
          ()
      in
      let len = Array.length members in
      if len = 0 then None
      else
        finish p faults necklace_faulty
          (Array.make p.W.size false)
          members 0 len root_hint
  | Some w ->
      Workspace.check w p;
      let necklace_faulty = w.Workspace.necklace_faulty in
      Nk.mark_faulty_necklaces_into p faults necklace_faulty;
      let order, start, len =
        It.largest_weak_component_span ?domains ~ws:w.Workspace.it
          ~n:p.W.size ~succs:(succs p) ~preds:It.no_preds
          ~keep:(fun v -> not necklace_faulty.(v))
          ()
      in
      if len = 0 then None
      else begin
        let in_bstar = w.Workspace.in_bstar in
        Array.fill in_bstar 0 p.W.size false;
        finish p faults necklace_faulty in_bstar order start len root_hint
      end

let component_members p ~faults node =
  let necklace_faulty = Nk.mark_faulty_necklaces p faults in
  if necklace_faulty.(node) then [||]
  else
    It.component_members ~n:p.W.size ~succs:(succs p) ~preds:(preds p)
      ~keep:(fun v -> not necklace_faulty.(v))
      node

let component_of p ~faults node =
  let necklace_faulty = Nk.mark_faulty_necklaces p faults in
  if necklace_faulty.(node) then None
  else
    let members =
      It.component_members ~n:p.W.size ~succs:(succs p) ~preds:(preds p)
        ~keep:(fun v -> not necklace_faulty.(v))
        node
    in
    let len = Array.length members in
    if len = 0 then None
    else
      finish p faults necklace_faulty
        (Array.make p.W.size false)
        members 0 len (Some node)

let nodes t =
  let acc = ref [] in
  for v = t.p.W.size - 1 downto 0 do
    if t.in_bstar.(v) then acc := v :: !acc
  done;
  !acc

let necklace_count t =
  (* Ascending sweep: the first node seen of each necklace is its
     minimal rotation, i.e. the representative — one O(size) pass, no
     canonical-form computation. *)
  let seen = Graphlib.Bitset.create t.p.W.size in
  let count = ref 0 in
  for v = 0 to t.p.W.size - 1 do
    if t.in_bstar.(v) && not (Graphlib.Bitset.mem seen v) then begin
      incr count;
      Nk.iter_nodes_from t.p v (fun y -> Graphlib.Bitset.add seen y)
    end
  done;
  !count

let eccentricity_of_root ?domains ?ws t =
  let itws =
    match ws with
    | None -> None
    | Some w ->
        Workspace.check w t.p;
        Some w.Workspace.it
  in
  It.eccentricity ?domains ?ws:itws ~n:t.p.W.size ~succs:(succs t.p)
    ~keep:(fun v -> t.in_bstar.(v))
    t.root

let diameter t =
  let keep v = t.in_bstar.(v) in
  let best = ref 0 in
  for v = 0 to t.p.W.size - 1 do
    if t.in_bstar.(v) then
      best :=
        max !best (It.eccentricity ~n:t.p.W.size ~succs:(succs t.p) ~keep v)
  done;
  !best

let is_strongly_connected t =
  It.is_strongly_connected ~n:t.p.W.size ~succs:(succs t.p) ~preds:(preds t.p)
    ~keep:(fun v -> t.in_bstar.(v))
    ()
