module W = Debruijn.Word
module Nk = Debruijn.Necklace
module Fa = Graphlib.Flatarr
module It = Graphlib.Itopo

type t = {
  p : W.params;
  graph : Graphlib.Digraph.t Lazy.t;
  faults : int list;
  necklace_faulty : Fa.Byte.t;
  in_bstar : Fa.Byte.t;
  size : int;
  root : int;
}

let succs p = fun x f -> W.iter_succs p x f
let preds p = fun x f -> W.iter_preds p x f

(* Byte-flag variant of [Nk.mark_faulty_necklaces_into]: walk each
   faulty node's rotation cycle directly. *)
let mark_faulty_necklaces_byte p faults (buf : Fa.Byte.t) =
  if Fa.Byte.length buf <> p.W.size then
    invalid_arg "Bstar: necklace_faulty buffer sized wrong";
  Fa.Byte.fill buf 0;
  List.iter (fun x -> Nk.iter_nodes_from p x (fun y -> buf.{y} <- 1)) faults

(* [get i] for i ∈ [start, start+len) enumerates the chosen component,
   [len > 0]; [in_bstar] must be all-zero on entry (fresh, or refilled
   by the workspace path). *)
let finish p faults necklace_faulty (in_bstar : Fa.Byte.t) ~get start len
    root_hint =
  (* One pass: mark membership and track the smallest member, which —
     being minimal on its necklace — is itself a representative. *)
  let best = ref max_int in
  for i = start to start + len - 1 do
    let v = get i in
    in_bstar.{v} <- 1;
    if v < !best then best := v
  done;
  let root =
    match root_hint with
    | Some h when h >= 0 && h < p.W.size && in_bstar.{Nk.canonical p h} <> 0 ->
        Nk.canonical p h
    | _ -> !best
  in
  Some
    {
      p;
      graph = lazy (Debruijn.Graph.b p);
      faults;
      necklace_faulty;
      in_bstar;
      size = len;
      root;
    }

(* Successor-only sweeps below: the removed set is a union of
   necklaces, so every weak component is strongly connected (see the
   header above) — directed reachability from a seed already covers its
   whole weak component, at half the edge work of the symmetric
   closure. *)

let compute ?root_hint ?domains ?ws p ~faults =
  match ws with
  | None ->
      let necklace_faulty = Fa.Byte.create p.W.size in
      mark_faulty_necklaces_byte p faults necklace_faulty;
      let members =
        It.largest_weak_component ?domains ~n:p.W.size ~succs:(succs p)
          ~preds:It.no_preds
          ~keep:(fun v -> necklace_faulty.{v} = 0)
          ()
      in
      let len = Array.length members in
      if len = 0 then None
      else
        finish p faults necklace_faulty
          (Fa.Byte.make p.W.size 0)
          ~get:(fun i -> members.(i))
          0 len root_hint
  | Some w ->
      Workspace.check w p;
      let necklace_faulty = w.Workspace.necklace_faulty in
      mark_faulty_necklaces_byte p faults necklace_faulty;
      let order, start, len =
        It.largest_weak_component_span ?domains ~ws:w.Workspace.it
          ~n:p.W.size ~succs:(succs p) ~preds:It.no_preds
          ~keep:(fun v -> necklace_faulty.{v} = 0)
          ()
      in
      if len = 0 then None
      else begin
        let in_bstar = w.Workspace.in_bstar in
        Fa.Byte.fill in_bstar 0;
        finish p faults necklace_faulty in_bstar
          ~get:(fun i -> order.{i})
          start len root_hint
      end

let component_members p ~faults node =
  let necklace_faulty = Nk.mark_faulty_necklaces p faults in
  if necklace_faulty.(node) then [||]
  else
    It.component_members ~n:p.W.size ~succs:(succs p) ~preds:(preds p)
      ~keep:(fun v -> not necklace_faulty.(v))
      node

let component_of p ~faults node =
  let necklace_faulty = Fa.Byte.create p.W.size in
  mark_faulty_necklaces_byte p faults necklace_faulty;
  if necklace_faulty.{node} <> 0 then None
  else
    let members =
      It.component_members ~n:p.W.size ~succs:(succs p) ~preds:(preds p)
        ~keep:(fun v -> necklace_faulty.{v} = 0)
        node
    in
    let len = Array.length members in
    if len = 0 then None
    else
      finish p faults necklace_faulty
        (Fa.Byte.make p.W.size 0)
        ~get:(fun i -> members.(i))
        0 len (Some node)

let nodes t =
  let acc = ref [] in
  for v = t.p.W.size - 1 downto 0 do
    if t.in_bstar.{v} <> 0 then acc := v :: !acc
  done;
  !acc

let necklace_count t =
  (* Ascending sweep: the first node seen of each necklace is its
     minimal rotation, i.e. the representative — one O(size) pass, no
     canonical-form computation. *)
  let seen = Graphlib.Bitset.create t.p.W.size in
  let count = ref 0 in
  for v = 0 to t.p.W.size - 1 do
    if t.in_bstar.{v} <> 0 && not (Graphlib.Bitset.mem seen v) then begin
      incr count;
      Nk.iter_nodes_from t.p v (fun y -> Graphlib.Bitset.add seen y)
    end
  done;
  !count

let eccentricity_of_root ?domains ?ws t =
  let itws =
    match ws with
    | None -> None
    | Some w ->
        Workspace.check w t.p;
        Some w.Workspace.it
  in
  let in_bstar = t.in_bstar in
  It.eccentricity ?domains ?ws:itws ~n:t.p.W.size ~succs:(succs t.p)
    ~keep:(fun v -> in_bstar.{v} <> 0)
    t.root

let diameter t =
  let in_bstar = t.in_bstar in
  let keep v = in_bstar.{v} <> 0 in
  let best = ref 0 in
  for v = 0 to t.p.W.size - 1 do
    if t.in_bstar.{v} <> 0 then
      best :=
        max !best (It.eccentricity ~n:t.p.W.size ~succs:(succs t.p) ~keep v)
  done;
  !best

let is_strongly_connected t =
  let in_bstar = t.in_bstar in
  It.is_strongly_connected ~n:t.p.W.size ~succs:(succs t.p) ~preds:(preds t.p)
    ~keep:(fun v -> in_bstar.{v} <> 0)
    ()
