(** The network-level (distributed) implementation of the FFC algorithm
    (§2.4), run phase by phase on the synchronous simulator.

    Phases and their round budgets:
    + {b Probe} — every node circulates its identity around its
      necklace; a node that does not get its identity back within n
      steps concludes its necklace is faulty (n rounds).
    + {b Broadcast} — R floods a message through B\u{2217}; first receipt
      fixes the BFS distance, the minimal sender fixes the T′ parent
      (eccentricity(R) + 1 rounds).
    + {b Choose} — each necklace circulates (distance, node, parent)
      triples to elect its earliest-reached node Y (≤ n rounds).
    + {b Exchange} — each non-root necklace's exit node αw announces
      (α, its representative, its parent's representative) to all
      successors wγ; receivers keep announcements that concern a T_w
      they belong to (1 round).
    + {b Membership} — the kept fragments circulate around each
      necklace so that every exit node knows the full T_w membership
      (≤ n rounds).

    After the last phase every node computes its successor in H locally.
    The resulting successor map is {e identical} to the centralized
    {!Embed.successor_map} (same tie-breaking rules), which the tests
    assert. *)

type stats = {
  probe_rounds : int;
  broadcast_rounds : int;
  choose_rounds : int;
  exchange_rounds : int;
  membership_rounds : int;
  total_rounds : int;
  messages : int;  (** total deliveries across all phases *)
  port_load : int;
      (** peak sends by one node in one round across all phases; a
          single-port network would serialize each round into at most
          this many (§2.4's "factor of d" remark) *)
  phase_traces : (string * Netsim.Simulator.round_metrics array) list;
      (** per-phase, per-round metrics (active nodes, deliveries, wall
          time), in phase order — the raw data behind the [*_rounds]
          fields *)
}

(** Each [*_rounds] field counts {e executed} simulator rounds
    (including the phase's round-0 compute step, see
    {!Netsim.Simulator}): the probe phase reports n + 1, a broadcast
    reaching eccentricity K reports at most K + 2, and the Θ(n) /
    O(K + n) shape of the totals is unchanged. *)

type t = {
  bstar : Bstar.t;
  successor : int array;  (** node → H-successor, −1 for non-participants *)
  cycle : int array;  (** H read off from the root *)
  stats : stats;
}

val run : ?domains:int -> Bstar.t -> t
(** Execute all phases on B(d,n) with the fault set of the given B\u{2217}
    (the B\u{2217} itself is only used for the root choice and for reading
    off the final cycle; every decision inside the phases is made by the
    simulated nodes from received messages).
    @raise Pipeline_error.Error if the assembled successor map does not
    close into a cycle (a protocol-level invariant violation, not a
    property of any fault set). *)

val live_necklace_flags : Bstar.t -> bool array * int
(** Run only the probe phase; returns per-node "my necklace is fault
    free" flags and the round count — for tests. *)
