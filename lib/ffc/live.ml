module W = Debruijn.Word
module Nk = Debruijn.Necklace

type event = Fault of int | Repair of int

type outcome = Patched | Recomputed | Unchanged

type error = Out_of_range of int | Already_faulty of int | Not_faulty of int

type stats = {
  events : int;
  fault_events : int;
  repair_events : int;
  rejected : int;
  patched : int;
  recomputed : int;
  unchanged : int;
  affected_nodes : int;
  last_affected : int;
}

(* Growable int vector — per-event scratch that amortizes to zero
   allocation once warm. *)
type vec = { mutable buf : int array; mutable len : int }

let vec_create () = { buf = Array.make 64 0; len = 0 }
let vec_clear v = v.len <- 0

let vec_push v x =
  if v.len = Array.length v.buf then begin
    let b = Array.make (2 * v.len) 0 in
    Array.blit v.buf 0 b 0 v.len;
    v.buf <- b
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

type t = {
  p : W.params;
  root_hint : int option;
  domains : int option;
  ws : Workspace.t option;
  (* ---- the current fault set ---- *)
  faulty : bool array;  (* per node *)
  nk_faults : (int, int) Hashtbl.t;  (* necklace rep -> faulty nodes on it *)
  mutable fault_count : int;
  mutable live_nodes : int;  (* nodes on fault-free necklaces *)
  (* ---- B* state, all node-level (index-free, so splices never
     renumber anything) ---- *)
  in_bstar : bool array;
  dist : int array;  (* BFS distance from root; -1 outside B* *)
  successor : int array;  (* ring successor map; -1 outside B* *)
  mutable root : int;  (* -1 when B* is empty *)
  mutable bsize : int;
  mutable ecc : int;
  (* ---- derived necklace structure, keyed by representative ---- *)
  chosen : int array;  (* rep -> lex-min (dist, node); -1 if not a live rep *)
  bucket_head : int array;  (* label w -> first child rep, -1 *)
  bucket_next : int array;  (* rep -> next child rep in its label bucket *)
  (* ---- ecc maintenance ---- *)
  mutable hist : int array;  (* hist.(k) = members at distance k *)
  (* ---- per-event scratch (epoch-stamped, never cleared wholesale) ---- *)
  mutable stamp : int;
  aff_stamp : int array;  (* node -> stamp when invalidated this event *)
  set_stamp : int array;  (* node -> stamp when (re)settled this event *)
  nk_stamp : int array;  (* rep -> stamp when its necklace is marked *)
  w_stamp : int array;  (* label -> stamp when its bucket is dirty *)
  cand : int array;  (* node -> tentative distance during repair *)
  queue : vec;
  affected : vec;
  changed : vec;
  marked : vec;
  dirty : vec;
  members : vec;
  mutable bq : vec array;  (* bucket queue indexed by tentative distance *)
  mutable bq_hi : int;
  (* ---- counters ---- *)
  mutable c_events : int;
  mutable c_faults : int;
  mutable c_repairs : int;
  mutable c_rejected : int;
  mutable c_patched : int;
  mutable c_recomputed : int;
  mutable c_unchanged : int;
  mutable c_affected : int;
  mutable c_last_affected : int;
}

let params t = t.p
let size t = t.bsize
let root t = t.root
let ecc t = t.ecc
let ring_length t = t.bsize
let is_empty t = t.bsize = 0
let in_bstar t v = t.in_bstar.(v)
let dist t v = t.dist.(v)
let successor t v = t.successor.(v)
let is_faulty t v = t.faulty.(v)
let fault_count t = t.fault_count

let stats t =
  {
    events = t.c_events;
    fault_events = t.c_faults;
    repair_events = t.c_repairs;
    rejected = t.c_rejected;
    patched = t.c_patched;
    recomputed = t.c_recomputed;
    unchanged = t.c_unchanged;
    affected_nodes = t.c_affected;
    last_affected = t.c_last_affected;
  }

let current_faults t =
  let acc = ref [] in
  for v = t.p.W.size - 1 downto 0 do
    if t.faulty.(v) then acc := v :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* ecc via a distance histogram: O(1) amortized updates, exact max.    *)

let ensure_hist t k =
  let len = Array.length t.hist in
  if k >= len then begin
    let b = Array.make (max (2 * len) (k + 1)) 0 in
    Array.blit t.hist 0 b 0 len;
    t.hist <- b
  end

let hist_inc t k =
  ensure_hist t k;
  t.hist.(k) <- t.hist.(k) + 1;
  if k > t.ecc then t.ecc <- k

let hist_dec t k =
  t.hist.(k) <- t.hist.(k) - 1;
  if k = t.ecc then
    while t.ecc > 0 && t.hist.(t.ecc) = 0 do
      t.ecc <- t.ecc - 1
    done

(* ------------------------------------------------------------------ *)
(* bucket queue for the incremental BFS phases                          *)

let bq_push t k v =
  let len = Array.length t.bq in
  if k >= len then begin
    let b = Array.make (max (2 * len) (k + 1)) t.bq.(0) in
    Array.blit t.bq 0 b 0 len;
    for i = len to Array.length b - 1 do
      b.(i) <- vec_create ()
    done;
    t.bq <- b
  end;
  vec_push t.bq.(k) v;
  if k > t.bq_hi then t.bq_hi <- k

let bq_reset t =
  for k = 0 to t.bq_hi do
    vec_clear t.bq.(k)
  done;
  t.bq_hi <- -1

(* ------------------------------------------------------------------ *)
(* full recompute: initialization and the safety-net fallback          *)

let set_empty t =
  let sz = t.p.W.size in
  Array.fill t.in_bstar 0 sz false;
  Array.fill t.dist 0 sz (-1);
  Array.fill t.successor 0 sz (-1);
  Array.fill t.chosen 0 sz (-1);
  Array.fill t.bucket_head 0 (sz / t.p.W.d) (-1);
  Array.fill t.hist 0 (Array.length t.hist) 0;
  t.root <- -1;
  t.bsize <- 0;
  t.ecc <- 0

(* Rebuild every Live-owned structure from a finished [Embed.t].  The
   embed's arrays may alias the shared workspace, so everything is
   copied out: Live's arrays must survive the workspace's next use. *)
let load t (e : Embed.t) =
  let p = t.p in
  let sz = p.W.size in
  let d = p.W.d in
  let stride = sz / d in
  let b = e.Embed.bstar in
  (* The pipeline's arrays are off-heap ({!Graphlib.Flatarr}) and may
     alias the workspace; copy them element-wise into Live's heap
     arrays. *)
  let in_bstar_flags = b.Bstar.in_bstar in
  for v = 0 to sz - 1 do
    t.in_bstar.(v) <- in_bstar_flags.{v} <> 0
  done;
  let tree = e.Embed.modified.Spanning.tree in
  Graphlib.Flatarr.blit_to_array tree.Spanning.dist t.dist;
  Graphlib.Flatarr.blit_to_array e.Embed.successor t.successor;
  t.root <- b.Bstar.root;
  t.bsize <- b.Bstar.size;
  t.ecc <- tree.Spanning.ecc;
  Array.fill t.chosen 0 sz (-1);
  Array.fill t.bucket_head 0 stride (-1);
  ensure_hist t t.ecc;
  Array.fill t.hist 0 (Array.length t.hist) 0;
  let root_rep = Nk.canonical p t.root in
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  (* One ascending sweep: the first unseen B* node of each necklace is
     its representative; walking the necklace from it yields the
     lexicographic (dist, node) minimum — the same [chosen] the batch
     pipeline's ascending scan produces. *)
  for v = 0 to sz - 1 do
    if t.in_bstar.(v) then begin
      if t.dist.(v) < 0 then
        (* stale workspace distance on a node the BFS did reach is
           impossible; normalize anyway for the non-member sweep below *)
        ()
      else hist_inc t t.dist.(v);
      if t.aff_stamp.(v) <> stamp then begin
        (* v is the representative of an unseen necklace *)
        let best = ref v in
        Nk.iter_nodes_from p v (fun y ->
            t.aff_stamp.(y) <- stamp;
            if
              t.dist.(y) < t.dist.(!best)
              || (t.dist.(y) = t.dist.(!best) && y < !best)
            then best := y);
        t.chosen.(v) <- !best;
        if v <> root_rep then begin
          let w = !best / d in
          t.bucket_next.(v) <- t.bucket_head.(w);
          t.bucket_head.(w) <- v
        end
      end
    end
    else t.dist.(v) <- -1
  done

let recompute t =
  t.c_recomputed <- t.c_recomputed + 1;
  let faults = current_faults t in
  match
    Embed.embed ?root_hint:t.root_hint ?domains:t.domains ?ws:t.ws t.p ~faults
  with
  | None -> set_empty t
  | Some e -> load t e

(* ------------------------------------------------------------------ *)
(* the derived-structure patch: recompute chosen / labels / D-edges of
   exactly the necklaces the BFS repair touched                         *)

let mark_necklace t r =
  if t.nk_stamp.(r) <> t.stamp then begin
    t.nk_stamp.(r) <- t.stamp;
    vec_push t.marked r
  end

let dirty_bucket t w =
  if t.w_stamp.(w) <> t.stamp then begin
    t.w_stamp.(w) <- t.stamp;
    vec_push t.dirty w
  end

let bucket_unlink t w r =
  if t.bucket_head.(w) = r then t.bucket_head.(w) <- t.bucket_next.(r)
  else begin
    let c = ref t.bucket_head.(w) in
    while !c >= 0 && t.bucket_next.(!c) <> r do
      c := t.bucket_next.(!c)
    done;
    if !c >= 0 then t.bucket_next.(!c) <- t.bucket_next.(r)
  end

(* Minimal live predecessor one level up — the batch pipeline's
   [Spanning.find_parent], on Live's own arrays. *)
let rec find_parent t stride d pre dv a =
  if a = d then -1
  else
    let u = (a * stride) + pre in
    if t.in_bstar.(u) && t.dist.(u) = dv - 1 then u
    else find_parent t stride d pre dv (a + 1)

let rec exit_scan t stride d w rep a =
  if a = d then -1
  else
    let x = (a * stride) + w in
    if t.in_bstar.(x) && Nk.canonical t.p x = rep then x
    else exit_scan t stride d w rep (a + 1)

let rec entry_scan t d w rep b =
  if b = d then -1
  else
    let x = (w * d) + b in
    if t.in_bstar.(x) && Nk.canonical t.p x = rep then x
    else entry_scan t d w rep (b + 1)

exception Fallback

(* Patch [chosen] / bucket membership / succ overrides for every
   necklace containing a changed node or a successor of one.  Raises
   [Fallback] if a height-one invariant check fails (never on a
   well-formed state; the caller then runs the full recompute). *)
let patch_derived t =
  let p = t.p in
  let d = p.W.d in
  let stride = p.W.size / d in
  let root_rep = Nk.canonical p t.root in
  vec_clear t.marked;
  vec_clear t.dirty;
  (* necklaces of changed nodes, and of their B* successors (whose
     chosen's parent pointer may silently retarget) *)
  for i = 0 to t.changed.len - 1 do
    let c = t.changed.buf.(i) in
    mark_necklace t (Nk.canonical p c);
    let sw = c mod stride * d in
    for b = 0 to d - 1 do
      let s = sw + b in
      if t.in_bstar.(s) then mark_necklace t (Nk.canonical p s)
    done
  done;
  for i = 0 to t.marked.len - 1 do
    let r = t.marked.buf.(i) in
    let old_chosen = t.chosen.(r) in
    if old_chosen >= 0 && r <> root_rep then begin
      let old_w = old_chosen / d in
      bucket_unlink t old_w r;
      dirty_bucket t old_w
    end;
    if t.in_bstar.(r) then begin
      let best = (ref r [@lint.allow "R7 one chosen-scan ref per marked necklace"]) in
      Nk.iter_nodes_from p r
        ((fun y ->
           if
             t.dist.(y) < t.dist.(!best)
             || (t.dist.(y) = t.dist.(!best) && y < !best)
           then best := y)
        [@lint.allow
          "R7 necklace-iterator callback: one closure per marked necklace, \
           amortized over its <= w nodes"]);
      t.chosen.(r) <- !best;
      if r <> root_rep then begin
        let w = !best / d in
        t.bucket_next.(r) <- t.bucket_head.(w);
        t.bucket_head.(w) <- r;
        dirty_bucket t w
      end
    end
    else t.chosen.(r) <- -1
  done;
  (* rebuild every dirty bucket: reset the suffix-w successor entries to
     the necklace rotation, then rewrite the sorted cyclic D-edges *)
  for i = 0 to t.dirty.len - 1 do
    let w = t.dirty.buf.(i) in
    for a = 0 to d - 1 do
      let x = (a * stride) + w in
      if t.in_bstar.(x) then t.successor.(x) <- (x mod stride * d) + (x / stride)
    done;
    vec_clear t.members;
    let parent_rep =
      (ref (-1) [@lint.allow "R7 one parent-consensus ref per dirty bucket"])
    in
    let c =
      (ref t.bucket_head.(w) [@lint.allow "R7 one bucket-walk cursor per dirty bucket"])
    in
    while !c >= 0 do
      let r = !c in
      vec_push t.members r;
      let y = t.chosen.(r) in
      let py = find_parent t stride d (y / d) t.dist.(y) 0 in
      if py < 0 then raise Fallback;
      let pr = Nk.canonical p py in
      if !parent_rep < 0 then parent_rep := pr
      else if !parent_rep <> pr then raise Fallback;
      c := t.bucket_next.(r)
    done;
    if t.members.len > 0 then begin
      vec_push t.members !parent_rep;
      (* insertion sort ascending by representative — the same order as
         the batch pipeline's ascending-necklace-index sort *)
      let m = t.members.buf in
      for i = 1 to t.members.len - 1 do
        let x = m.(i) in
        let j = (ref (i - 1) [@lint.allow "R7 insertion-sort cursor, one per member"]) in
        while !j >= 0 && m.(!j) > x do
          m.(!j + 1) <- m.(!j);
          decr j
        done;
        m.(!j + 1) <- x
      done;
      let k = t.members.len in
      for i = 0 to k - 1 do
        let exit = exit_scan t stride d w m.(i) 0 in
        let entry = entry_scan t d w m.((i + 1) mod k) 0 in
        if exit < 0 || entry < 0 then raise Fallback;
        t.successor.(exit) <- entry
      done
    end
  done
[@@lint.hot]

(* ------------------------------------------------------------------ *)
(* fault: splice the dead necklace out and repair distances downstream  *)

let rec supported t stride d pre dv a =
  if a = d then false
  else
    let u = (a * stride) + pre in
    if t.in_bstar.(u) && t.aff_stamp.(u) <> t.stamp && t.dist.(u) = dv - 1 then
      true
    else supported t stride d pre dv (a + 1)

let remove_necklace t rep =
  let p = t.p in
  let d = p.W.d in
  let stride = p.W.size / d in
  t.stamp <- t.stamp + 1;
  vec_clear t.queue;
  vec_clear t.affected;
  vec_clear t.changed;
  (* 1. drop the necklace's nodes *)
  Nk.iter_nodes_from p rep
    ((fun y ->
       t.in_bstar.(y) <- false;
       hist_dec t t.dist.(y);
       t.dist.(y) <- -1;
       t.successor.(y) <- -1;
       t.bsize <- t.bsize - 1;
       vec_push t.changed y)
    [@lint.allow
      "R7 necklace-drop callback: one closure per removed necklace, \
       amortized over its <= w nodes"]);
  (* 2. identify downstream nodes whose BFS level lost all support.
     Invalidation is conservative (an affected predecessor does not
     support), so phase 3 recomputes an exact superset of the nodes
     whose distance really moves. *)
  for i = 0 to t.changed.len - 1 do
    let y = t.changed.buf.(i) in
    let sw = y mod stride * d in
    for b = 0 to d - 1 do
      let z = sw + b in
      if t.in_bstar.(z) then vec_push t.queue z
    done
  done;
  let qi = (ref 0 [@lint.allow "R7 one invalidation-queue cursor per event"]) in
  while !qi < t.queue.len do
    let z = t.queue.buf.(!qi) in
    incr qi;
    if
      t.in_bstar.(z) && t.aff_stamp.(z) <> t.stamp && z <> t.root
      && not (supported t stride d (z / d) t.dist.(z) 0)
    then begin
      t.aff_stamp.(z) <- t.stamp;
      vec_push t.affected z;
      let sw = z mod stride * d in
      for b = 0 to d - 1 do
        let s = sw + b in
        if t.in_bstar.(s) && t.aff_stamp.(s) <> t.stamp then vec_push t.queue s
      done
    end
  done;
  (* 3. exact multi-source relayering of the affected set from its
     unaffected boundary (deletions only increase distances, so
     unaffected levels are final) *)
  bq_reset t;
  for i = 0 to t.affected.len - 1 do
    let v = t.affected.buf.(i) in
    let pre = v / d in
    let best =
      (ref max_int [@lint.allow "R7 one boundary-seed ref per affected node"])
    in
    for a = 0 to d - 1 do
      let u = (a * stride) + pre in
      if t.in_bstar.(u) && t.aff_stamp.(u) <> t.stamp && t.dist.(u) + 1 < !best
      then best := t.dist.(u) + 1
    done;
    t.cand.(v) <- !best;
    if !best < max_int then bq_push t !best v
  done;
  let dv = (ref 0 [@lint.allow "R7 one level cursor per event"]) in
  while !dv <= t.bq_hi do
    let level = t.bq.(!dv) in
    let li = (ref 0 [@lint.allow "R7 one within-level cursor per level"]) in
    while !li < level.len do
      let v = level.buf.(!li) in
      incr li;
      if
        t.aff_stamp.(v) = t.stamp && t.set_stamp.(v) <> t.stamp
        && t.cand.(v) = !dv
      then begin
        t.set_stamp.(v) <- t.stamp;
        if t.dist.(v) <> !dv then begin
          hist_dec t t.dist.(v);
          t.dist.(v) <- !dv;
          hist_inc t !dv;
          vec_push t.changed v
        end;
        let sw = v mod stride * d in
        for b = 0 to d - 1 do
          let s = sw + b in
          if
            t.in_bstar.(s) && t.aff_stamp.(s) = t.stamp
            && t.set_stamp.(s) <> t.stamp
            && t.cand.(s) > !dv + 1
          then begin
            t.cand.(s) <- !dv + 1;
            bq_push t (!dv + 1) s
          end
        done
      end
    done;
    incr dv
  done;
  (* 4. affected nodes that never resettled are cut off from the root:
     they leave B* (their live necklaces are now a smaller component) *)
  for i = 0 to t.affected.len - 1 do
    let v = t.affected.buf.(i) in
    if t.set_stamp.(v) <> t.stamp then begin
      t.in_bstar.(v) <- false;
      hist_dec t t.dist.(v);
      t.dist.(v) <- -1;
      t.successor.(v) <- -1;
      t.bsize <- t.bsize - 1;
      vec_push t.changed v
    end
  done
[@@lint.hot]

(* ------------------------------------------------------------------ *)
(* repair: graft the revived necklace back and relax shortcuts          *)

(* true iff the revived necklace has any De Bruijn edge to or from the
   current B* *)
let adjacent_to_bstar t rep =
  let p = t.p in
  let d = p.W.d in
  let stride = p.W.size / d in
  let hit = ref false in
  Nk.iter_nodes_from p rep (fun y ->
      if not !hit then begin
        let pre = y / d in
        let sw = y mod stride * d in
        for a = 0 to d - 1 do
          if t.in_bstar.((a * stride) + pre) || t.in_bstar.(sw + a) then
            hit := true
        done
      end);
  !hit

let insert_necklace t rep =
  let p = t.p in
  let d = p.W.d in
  let stride = p.W.size / d in
  t.stamp <- t.stamp + 1;
  vec_clear t.changed;
  bq_reset t;
  (* tentative levels for the revived nodes from their settled B*
     predecessors; everything else improves by relaxation *)
  Nk.iter_nodes_from p rep (fun y ->
      t.aff_stamp.(y) <- t.stamp;
      let pre = y / d in
      let best = ref max_int in
      for a = 0 to d - 1 do
        let u = (a * stride) + pre in
        if t.in_bstar.(u) && t.dist.(u) + 1 < !best then best := t.dist.(u) + 1
      done;
      t.cand.(y) <- !best;
      if !best < max_int then bq_push t !best y);
  let dv = ref 0 in
  while !dv <= t.bq_hi do
    let level = t.bq.(!dv) in
    let li = ref 0 in
    while !li < level.len do
      let v = level.buf.(!li) in
      incr li;
      let settle_revived =
        t.aff_stamp.(v) = t.stamp && t.set_stamp.(v) <> t.stamp
        && t.cand.(v) = !dv
      in
      let relax_existing =
        t.aff_stamp.(v) <> t.stamp && t.in_bstar.(v) && t.dist.(v) = !dv
        && t.set_stamp.(v) <> t.stamp
      in
      if settle_revived then begin
        t.set_stamp.(v) <- t.stamp;
        t.in_bstar.(v) <- true;
        t.dist.(v) <- !dv;
        t.successor.(v) <- (v mod stride * d) + (v / stride);
        t.bsize <- t.bsize + 1;
        hist_inc t !dv;
        vec_push t.changed v
      end
      else if relax_existing then t.set_stamp.(v) <- t.stamp;
      if settle_revived || relax_existing then begin
        let sw = v mod stride * d in
        for b = 0 to d - 1 do
          let s = sw + b in
          if t.aff_stamp.(s) = t.stamp then begin
            if t.set_stamp.(s) <> t.stamp && t.cand.(s) > !dv + 1 then begin
              t.cand.(s) <- !dv + 1;
              bq_push t (!dv + 1) s
            end
          end
          else if t.in_bstar.(s) && t.dist.(s) > !dv + 1 then begin
            (* a strictly shorter path through the revived necklace:
               improvements arrive in ascending level order, so each
               existing node moves at most once *)
            hist_dec t t.dist.(s);
            t.dist.(s) <- !dv + 1;
            hist_inc t (!dv + 1);
            vec_push t.changed s;
            bq_push t (!dv + 1) s
          end
        done
      end
    done;
    incr dv
  done;
  (* the merged component is strongly connected (the removed set is a
     union of necklaces), so every revived node must have settled *)
  Nk.iter_nodes_from p rep (fun y ->
      if t.set_stamp.(y) <> t.stamp then raise Fallback)

(* ------------------------------------------------------------------ *)
(* event dispatch                                                       *)

let nk_fault_count t rep =
  match Hashtbl.find_opt t.nk_faults rep with Some c -> c | None -> 0

let finish_patch t =
  match patch_derived t with
  | () ->
      t.c_patched <- t.c_patched + 1;
      t.c_affected <- t.c_affected + t.changed.len;
      t.c_last_affected <- t.changed.len;
      Patched
  | exception Fallback ->
      recompute t;
      Recomputed

let do_fault t v =
  t.faulty.(v) <- true;
  t.fault_count <- t.fault_count + 1;
  let rep = Nk.canonical t.p v in
  let c = nk_fault_count t rep in
  Hashtbl.replace t.nk_faults rep (c + 1);
  if c > 0 then begin
    (* the necklace was already out of B* *)
    t.c_unchanged <- t.c_unchanged + 1;
    Unchanged
  end
  else begin
    t.live_nodes <- t.live_nodes - Nk.length t.p rep;
    if not t.in_bstar.(rep) then begin
      (* a live-but-excluded necklace died: B* was strictly larger than
         every excluded component and those only shrank, so B*, its
         root and its distances are all unchanged *)
      t.c_unchanged <- t.c_unchanged + 1;
      Unchanged
    end
    else if t.bsize = 0 || Nk.same t.p v t.root then begin
      recompute t;
      Recomputed
    end
    else begin
      remove_necklace t rep;
      (* B* must stay the unique largest component: compare against the
         total excluded live mass (an upper bound on any rival) *)
      if t.bsize <= t.live_nodes - t.bsize then begin
        recompute t;
        Recomputed
      end
      else finish_patch t
    end
  end

let do_repair t v =
  t.faulty.(v) <- false;
  t.fault_count <- t.fault_count - 1;
  let rep = Nk.canonical t.p v in
  let c = nk_fault_count t rep in
  if c > 1 then begin
    Hashtbl.replace t.nk_faults rep (c - 1);
    t.c_unchanged <- t.c_unchanged + 1;
    Unchanged
  end
  else begin
    Hashtbl.remove t.nk_faults rep;
    let excluded_before = t.live_nodes - t.bsize in
    t.live_nodes <- t.live_nodes + Nk.length t.p rep;
    let root_changes =
      match t.root_hint with
      | Some h ->
          let rh = Nk.canonical t.p h in
          (* the hint's own necklace reviving re-roots at the hint;
             otherwise we are in smallest-member mode whenever the
             current root is not the hint *)
          rep = rh || (t.root <> rh && rep < t.root)
      | None -> t.bsize = 0 || rep < t.root
    in
    if t.bsize = 0 || excluded_before > 0 || root_changes then begin
      recompute t;
      Recomputed
    end
    else if not (adjacent_to_bstar t rep) then
      (* an isolated revived necklace is its own small component; B*
         stays the largest unless the instance is tiny *)
      if t.bsize <= t.live_nodes - t.bsize then begin
        recompute t;
        Recomputed
      end
      else begin
        t.c_unchanged <- t.c_unchanged + 1;
        Unchanged
      end
    else
      match insert_necklace t rep with
      | () -> finish_patch t
      | exception Fallback ->
          recompute t;
          Recomputed
  end

let apply t ev =
  let sz = t.p.W.size in
  let reject e =
    t.c_rejected <- t.c_rejected + 1;
    Error e
  in
  match ev with
  | Fault v when v < 0 || v >= sz -> reject (Out_of_range v)
  | Repair v when v < 0 || v >= sz -> reject (Out_of_range v)
  | Fault v when t.faulty.(v) -> reject (Already_faulty v)
  | Repair v when not t.faulty.(v) -> reject (Not_faulty v)
  | Fault v ->
      t.c_events <- t.c_events + 1;
      t.c_faults <- t.c_faults + 1;
      Ok (do_fault t v)
  | Repair v ->
      t.c_events <- t.c_events + 1;
      t.c_repairs <- t.c_repairs + 1;
      Ok (do_repair t v)

(* ------------------------------------------------------------------ *)

let create ?root_hint ?domains ?ws p ~faults =
  (match ws with Some w -> Workspace.check w p | None -> ());
  let sz = p.W.size in
  let t =
    {
      p;
      root_hint;
      domains;
      ws;
      faulty = Array.make sz false;
      nk_faults = Hashtbl.create 64;
      fault_count = 0;
      live_nodes = sz;
      in_bstar = Array.make sz false;
      dist = Array.make sz (-1);
      successor = Array.make sz (-1);
      root = -1;
      bsize = 0;
      ecc = 0;
      chosen = Array.make sz (-1);
      bucket_head = Array.make (sz / p.W.d) (-1);
      bucket_next = Array.make sz (-1);
      hist = Array.make 64 0;
      stamp = 0;
      aff_stamp = Array.make sz 0;
      set_stamp = Array.make sz 0;
      nk_stamp = Array.make sz 0;
      w_stamp = Array.make (sz / p.W.d) 0;
      cand = Array.make sz max_int;
      queue = vec_create ();
      affected = vec_create ();
      changed = vec_create ();
      marked = vec_create ();
      dirty = vec_create ();
      members = vec_create ();
      bq = Array.init 16 (fun _ -> vec_create ());
      bq_hi = -1;
      c_events = 0;
      c_faults = 0;
      c_repairs = 0;
      c_rejected = 0;
      c_patched = 0;
      c_recomputed = 0;
      c_unchanged = 0;
      c_affected = 0;
      c_last_affected = 0;
    }
  in
  List.iter
    (fun v ->
      if v < 0 || v >= sz then invalid_arg "Ffc.Live.create: fault out of range";
      if not t.faulty.(v) then begin
        t.faulty.(v) <- true;
        t.fault_count <- t.fault_count + 1;
        let rep = Nk.canonical p v in
        let c = nk_fault_count t rep in
        Hashtbl.replace t.nk_faults rep (c + 1);
        if c = 0 then t.live_nodes <- t.live_nodes - Nk.length p rep
      end)
    faults;
  (match
     Embed.embed ?root_hint ?domains ?ws p ~faults:(current_faults t)
   with
  | None -> set_empty t
  | Some e -> load t e);
  t

let ring t =
  if t.bsize = 0 then None
  else begin
    let c = Array.make t.bsize 0 in
    let x = ref t.root in
    for i = 0 to t.bsize - 1 do
      if !x < 0 then
        Pipeline_error.raise_error ~stage:"Live"
          "successor map did not close into a cycle";
      c.(i) <- !x;
      x := t.successor.(!x)
    done;
    if !x <> t.root then
      Pipeline_error.raise_error ~stage:"Live"
        "successor map did not close into a cycle";
    Some c
  end
