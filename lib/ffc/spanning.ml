module W = Debruijn.Word
module Fa = Graphlib.Flatarr
module It = Graphlib.Itopo
module Sched = Graphlib.Sched

type tree = {
  adj : Adjacency.t;
  root_idx : int;
  dist : Fa.t;
  ecc : int;
  node_parent : Fa.t;
  parent : Fa.t;
  label : Fa.t;
  chosen : Fa.t;
}

(* Module-level so the per-node parent search allocates no closure — a
   capturing [let rec] in the scan loop would cost ~9 minor words per
   live node. *)
let rec find_parent (in_bstar : Fa.Byte.t) (dist : Fa.t) stride d pre dv a =
  if a = d then -1
  else
    let u = (a * stride) + pre in
    if in_bstar.{u} <> 0 && dist.{u} = dv - 1 then u
    else find_parent in_bstar dist stride d pre dv (a + 1)

(* The T′ parent scan writes one slot per reached node, each a pure
   function of the (already final) dist array — so chunking the
   discovery order across a work-stealing pool is trivially
   deterministic: every slot gets the same value no matter which domain
   writes it.  Worth parallelizing: at B(2,22) this pass is a quarter
   of the pipeline. *)
let fill_parents ?domains ~(bfs : It.bfs) ~in_bstar ~node_parent ~stride ~d ()
    =
  let dist = bfs.It.dist in
  let order = bfs.It.order in
  let scan i =
    let v = order.{i} in
    node_parent.{v} <- find_parent in_bstar dist stride d (v / d) dist.{v} 0
  in
  match domains with
  | Some k when k > 1 && bfs.It.count >= It.par_threshold ->
      Sched.with_pool ~domains:k (fun pool ->
          Sched.parallel_for pool ~chunk:It.chunk_size ~lo:1 ~hi:bfs.It.count
            (fun _ clo chi ->
              for i = clo to chi - 1 do
                (scan i
                [@lint.par_write
                  "scan i writes only node_parent.{order.{i}}, and the \
                   discovery order is a permutation — distinct i, \
                   distinct slot; the value is a pure function of the \
                   final dist array"])
              done))
  | _ ->
      for i = 1 to bfs.It.count - 1 do
        scan i
      done

let build ?domains ?ws (adj : Adjacency.t) =
  let bstar = adj.Adjacency.bstar in
  let p = bstar.Bstar.p in
  let size = p.W.size in
  let in_bstar_arr = bstar.Bstar.in_bstar in
  let in_bstar v = in_bstar_arr.{v} <> 0 in
  let root = bstar.Bstar.root in
  (match ws with Some w -> Workspace.check w p | None -> ());
  let itws = match ws with None -> None | Some w -> Some w.Workspace.it in
  let bfs =
    It.bfs ?domains ?ws:itws ~n:size
      ~succs:(fun x f -> W.iter_succs p x f)
      ~keep:in_bstar root
  in
  let dist = bfs.It.dist in
  (* BFS discovers by nondecreasing distance, so the root's
     eccentricity in B* — ecc(R), Table 2.1/2.2's column — is the
     distance of the last discovery; recording it here saves the
     campaign a whole extra traversal. *)
  let ecc =
    if bfs.It.count = 0 then 0 else dist.{bfs.It.order.{bfs.It.count - 1}}
  in
  (* T′ parent: minimal predecessor one BFS level up, inside B*.  Only
     reached nodes are scanned (via discovery order); predecessors are
     a·stride + v/d for a = 0..d−1 — ascending in a, so the first live
     hit at the previous level is already the minimal one. *)
  let node_parent =
    match ws with
    | None -> Fa.make size (-1)
    | Some w ->
        Fa.fill w.Workspace.node_parent (-1);
        w.Workspace.node_parent
  in
  let stride = size / p.W.d in
  fill_parents ?domains ~bfs ~in_bstar:in_bstar_arr ~node_parent ~stride
    ~d:p.W.d ();
  let m = Array.length adj.Adjacency.reps in
  let root_idx = adj.Adjacency.idx_of_node.{root} in
  (* Necklace-level arrays: workspace capacity is the fault-free
     necklace count ≥ m; only the first m entries are (re)set and
     read. *)
  let necklace_array =
    match ws with
    | None -> fun _ -> Fa.make m (-1)
    | Some w ->
        fun pick ->
          let a = pick w in
          Fa.fill_prefix a m (-1);
          a
  in
  let parent = necklace_array (fun w -> w.Workspace.parent) in
  let label = necklace_array (fun w -> w.Workspace.label) in
  let chosen = necklace_array (fun w -> w.Workspace.chosen) in
  (* Earliest receipt, ties toward the minimal node — a lexicographic
     (dist, node) minimum per necklace.  One ascending node scan: on
     equal distance the first (smallest) node sticks. *)
  let idx_of_node = adj.Adjacency.idx_of_node in
  for v = 0 to size - 1 do
    let i = idx_of_node.{v} in
    if i >= 0 then begin
      let b = chosen.{i} in
      if b < 0 || dist.{v} < dist.{b} then chosen.{i} <- v
    end
  done;
  for i = 0 to m - 1 do
    let y = chosen.{i} in
    assert (y >= 0);
    if i <> root_idx then begin
      let par_node = node_parent.{y} in
      assert (par_node >= 0);
      parent.{i} <- idx_of_node.{par_node};
      label.{i} <- W.prefix p y
    end
  done;
  (* The root's chosen node is R itself (distance 0). *)
  chosen.{root_idx} <- root;
  { adj; root_idx; dist; ecc; node_parent; parent; label; chosen }

let tree_edges t =
  let m = Array.length t.adj.Adjacency.reps in
  List.filter_map
    (fun i ->
      if i = t.root_idx then None else Some (t.parent.{i}, i, t.label.{i}))
    (List.init m Fun.id)

let check_height_one t =
  let by_label = Hashtbl.create 16 in
  List.for_all
    (fun (par, _, w) ->
      match Hashtbl.find_opt by_label w with
      | None ->
          Hashtbl.add by_label w par;
          true
      | Some par' -> par = par')
    (tree_edges t)

type modified = { tree : tree; succ_override : Fa.t }

(* Bucket the non-root necklaces by their parent-edge label w — labels
   are ints below wsize, so two arrays replace the seed's Hashtbl.
   Height-one means all w-edges share one parent, so each bucket records
   the parent once plus the child list. *)
let label_buckets t =
  let adj = t.adj in
  let p = adj.Adjacency.bstar.Bstar.p in
  let wsize = p.W.size / p.W.d in
  let m = Array.length adj.Adjacency.reps in
  let bucket_par = Array.make wsize (-1) in
  let bucket_children = Array.make wsize [] in
  for i = 0 to m - 1 do
    if i <> t.root_idx then begin
      let w = t.label.{i} in
      let par = t.parent.{i} in
      if bucket_par.(w) < 0 then bucket_par.(w) <- par
      else assert (bucket_par.(w) = par);
      bucket_children.(w) <- i :: bucket_children.(w)
    end
  done;
  (bucket_par, bucket_children)

let modify ?ws t =
  let adj = t.adj in
  let p = adj.Adjacency.bstar.Bstar.p in
  let wsize = p.W.size / p.W.d in
  let m = Array.length adj.Adjacency.reps in
  (* Same bucketing as {!label_buckets}, but as intrusive lists in flat
     arrays ([bucket_head]/[bucket_next]) so the workspace path
     allocates nothing; the fresh path uses identical code on fresh
     arrays.  Walking a chain yields children in descending index —
     the same order the cons-list version produced — and the sort below
     canonicalizes anyway. *)
  let bucket_par, bucket_head, bucket_next, scratch, succ_override =
    match ws with
    | None ->
        ( Fa.make wsize (-1),
          Fa.make wsize (-1),
          Fa.make m (-1),
          Fa.make (m + 1) 0,
          Fa.make p.W.size (-1) )
    | Some w ->
        Workspace.check w p;
        Fa.fill w.Workspace.bucket_par (-1);
        Fa.fill w.Workspace.bucket_head (-1);
        (* bucket_next needs no reset: only chains rooted in
           bucket_head are walked, and every link on them is written
           this call. *)
        Fa.fill w.Workspace.succ_override (-1);
        ( w.Workspace.bucket_par,
          w.Workspace.bucket_head,
          w.Workspace.bucket_next,
          w.Workspace.nscratch,
          w.Workspace.succ_override )
  in
  for i = 0 to m - 1 do
    if i <> t.root_idx then begin
      let w = t.label.{i} in
      let par = t.parent.{i} in
      if bucket_par.{w} < 0 then bucket_par.{w} <- par
      else assert (bucket_par.{w} = par);
      bucket_next.{i} <- bucket_head.{w};
      bucket_head.{w} <- i
    end
  done;
  (* The D-edges, flattened to node level: the w-edge [X]→[Y] leaves [X]
     at its unique exit node αw and enters [Y] at its unique entry node
     wβ, so one int per node replaces the (idx, w)-keyed Hashtbl.
     (Cursor refs hoisted out of the loop — one allocation, not one per
     bucket.) *)
  let k = ref 0 in
  let c = ref (-1) in
  for w = 0 to wsize - 1 do
    let par = bucket_par.{w} in
    if par >= 0 then begin
      k := 1;
      scratch.{0} <- par;
      c := bucket_head.{w};
      while !c >= 0 do
        scratch.{!k} <- !c;
        incr k;
        c := bucket_next.{!c}
      done;
      let k = !k in
      (* Insertion sort over necklace indices: representatives ascend
         with index, so index order IS increasing-representative order;
         a T_w is tiny (two members is typical). *)
      for i = 1 to k - 1 do
        let x = scratch.{i} in
        c := i - 1;
        while !c >= 0 && scratch.{!c} > x do
          scratch.{!c + 1} <- scratch.{!c};
          decr c
        done;
        scratch.{!c + 1} <- x
      done;
      for i = 0 to k - 1 do
        let idx = scratch.{i} and next = scratch.{(i + 1) mod k} in
        let exit = Adjacency.exit_node adj idx w in
        let entry = Adjacency.entry_node adj next w in
        assert (exit >= 0 && entry >= 0);
        succ_override.{exit} <- entry
      done
    end
  done;
  { tree = t; succ_override }

let groups m =
  let t = m.tree in
  let adj = t.adj in
  let p = adj.Adjacency.bstar.Bstar.p in
  let wsize = p.W.size / p.W.d in
  let bucket_par, bucket_children = label_buckets t in
  let rep i = adj.Adjacency.reps.(i) in
  let acc = ref [] in
  for w = wsize - 1 downto 0 do
    let par = bucket_par.(w) in
    if par >= 0 then
      acc :=
        ( w,
          List.sort
            (fun a b -> Int.compare (rep a) (rep b))
            (par :: bucket_children.(w)) )
        :: !acc
  done;
  !acc

let out_edge m idx w =
  let adj = m.tree.adj in
  match Adjacency.node_with_suffix adj idx w with
  | None -> None
  | Some exit ->
      let entry = m.succ_override.{exit} in
      if entry < 0 then None else Some adj.Adjacency.idx_of_node.{entry}

let d_edge_count m =
  let acc = ref 0 in
  for x = 0 to Fa.length m.succ_override - 1 do
    if m.succ_override.{x} >= 0 then incr acc
  done;
  !acc

let is_spanning_subgraph m =
  let adj = m.tree.adj in
  List.for_all
    (fun (w, members) ->
      let arr = Array.of_list members in
      let k = Array.length arr in
      let ok = ref true in
      Array.iteri
        (fun i src ->
          let dst = arr.((i + 1) mod k) in
          ok :=
            !ok
            && Option.is_some (Adjacency.node_with_suffix adj src w)
            && Option.is_some (Adjacency.node_with_prefix adj dst w)
            && src <> dst)
        arr;
      !ok)
    (groups m)
