module W = Debruijn.Word
module Nk = Debruijn.Necklace

let path_p p x a =
  let rec go acc v k =
    if k = 0 then List.rev acc
    else begin
      let v' = W.snoc p (W.suffix p v) a in
      go (v' :: acc) v' (k - 1)
    end
  in
  go [ x ] x p.W.n

let path_q p a i y =
  if i < 1 || i > p.W.d - 1 then invalid_arg "Routing.path_q: i out of range";
  let a' = (a + i) mod p.W.d in
  let start = W.constant p a in
  let u1 = W.snoc p (W.suffix p start) a' in
  let ydigits = W.decode p y in
  let rec go acc v j =
    if j = p.W.n then List.rev acc
    else
      let v' = W.snoc p (W.suffix p v) ydigits.(j) in
      go (v' :: acc) v' (j + 1)
  in
  go [ u1; start ] u1 0

let interior_necklaces p path =
  match path with
  | [] | [ _ ] | [ _; _ ] -> []
  | _ :: rest ->
      let interior = List.filteri (fun i _ -> i < List.length rest - 1) rest in
      List.sort_uniq Int.compare (List.map (Nk.canonical p) interior)

(* Remove cycles from a walk, keeping it a simple path with the same
   endpoints (every removed node was on the walk, so liveness is
   preserved). *)
let loop_erase walk =
  let seen = Hashtbl.create 64 in
  let rec go acc = function
    | [] -> List.rev acc
    | v :: rest ->
        if Hashtbl.mem seen v then begin
          (* drop back to the previous occurrence of v *)
          let rec pop = function
            | w :: acc' when w <> v ->
                Hashtbl.remove seen w;
                pop acc'
            | acc' -> acc'
          in
          go (pop acc) rest
        end
        else begin
          Hashtbl.add seen v ();
          go (v :: acc) rest
        end
  in
  go [] walk

let route p ~faulty_necklace x y =
  if faulty_necklace x || faulty_necklace y then None
  else if x = y then Some [ x ]
  else begin
    let live v = not (faulty_necklace v) in
    let live_interior path = List.for_all (fun v -> live v) path in
    (* try each a: P_a fault-free in its interior, then each i with Q_i
       fault-free; splice skipping aⁿ. *)
    let try_a a =
      let pa = path_p p x a in
      (* drop the final aⁿ; the interior to check is everything after x *)
      let before_last = List.filteri (fun i _ -> i < p.W.n) pa in
      match before_last with
      | [] -> None
      | _ :: interior_p ->
          if not (live_interior interior_p) then None
          else
            let try_i i =
              match path_q p a i y with
              | _ :: tail ->
                  (* tail = u₁ … y; interior is everything but y *)
                  let interior_q = List.filteri (fun j _ -> j < List.length tail - 1) tail in
                  if live_interior interior_q then Some (before_last @ tail) else None
              | [] -> None
            in
            List.find_map try_i (List.init (p.W.d - 1) (fun i -> i + 1))
    in
    Option.map loop_erase (List.find_map try_a (List.init p.W.d Fun.id))
  end

let verify_path p path =
  let rec go = function
    | a :: (b :: _ as rest) -> W.suffix p a = W.prefix p b && go rest
    | _ -> true
  in
  go path
