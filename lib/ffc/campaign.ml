module W = Debruijn.Word

type point = {
  f : int;
  trials : int;
  embedded : int;
  verified : int;
  bound_applicable : int;
  bound_ok : int;
  mean_bstar_size : float;
  mean_ring_length : float;
  mean_ecc : float;
  min_ring_length : int;
  wall_s : float;
  minor_words_per_trial : float;
  major_words_per_trial : float;
}

type outcome = { osize : int; oring : int; oecc : int; over : bool }

let nothing = { osize = 0; oring = 0; oecc = 0; over = false }

(* Per-trial generators are substreams of (campaign seed, f, trial)
   alone — the same Rng.split scheme as Dhc.Campaign — so the fault
   samples, and hence every statistic except the wall/GC figures, are
   bit-identical at any ?domains and with or without workspace reuse. *)
let trial_rng ~seed ~f ~trial = Util.Rng.split seed ((1_000_003 * f) + trial)

let length_bound p f =
  if f >= 0 && f <= p.W.d - 2 then p.W.size - (p.W.n * f)
  else if p.W.d = 2 && f = 1 then p.W.size - (p.W.n + 1)
  else -1

let run_trial ~p ~ws ~seed ~f trial =
  let rng = trial_rng ~seed ~f ~trial in
  let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
  (* R = 0…01, the thesis's distinguished node for Tables 2.1/2.2; when
     its necklace is faulty the embedding re-roots at the smallest live
     representative. *)
  match Embed.embed ~root_hint:1 ?ws p ~faults with
  | None -> nothing
  | Some e ->
      {
        osize = e.Embed.bstar.Bstar.size;
        oring = Embed.length e;
        oecc = e.Embed.modified.Spanning.tree.Spanning.ecc;
        over = Embed.verify ?ws e;
      }

let point ~domains ~trials ~seed ~(wss : Workspace.t array) ~p f =
  let t0 = (Unix.gettimeofday () [@lint.allow "R1 wall_s is a reported statistic, never branched on"]) in
  let out = Array.make trials nothing in
  let nworkers = if domains <= 1 then 1 else min domains trials in
  let minor = Array.make trials 0. in
  let major = Array.make trials 0. in
  (* Strided trial assignment, one workspace per worker: worker w runs
     trials w, w+nworkers, …  Outcomes land at their trial index, so
     aggregation order — and every derived statistic — is independent
     of scheduling.  GC counters are read per trial, in the trial's own
     domain (Gc.counters is domain-local). *)
  let worker w =
    let ws = if Array.length wss = 0 then None else Some wss.(w) in
    let i = ref w in
    while !i < trials do
      let m0, _, j0 = Gc.counters () in
      out.(!i) <- run_trial ~p ~ws ~seed ~f !i;
      let m1, _, j1 = Gc.counters () in
      minor.(!i) <- m1 -. m0;
      major.(!i) <- j1 -. j0;
      i := !i + nworkers
    done
  in
  if nworkers = 1 then worker 0
  else begin
    let spawned =
      List.init (nworkers - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
    in
    worker 0;
    List.iter Domain.join spawned
  end;
  let wall_s = (Unix.gettimeofday () [@lint.allow "R1 wall_s is a reported statistic, never branched on"]) -. t0 in
  let embedded = ref 0 and verified = ref 0 in
  let sb = ref 0 and sr = ref 0 and se = ref 0 in
  let minr = ref max_int in
  Array.iter
    (fun o ->
      if o.osize > 0 then incr embedded;
      if o.over then incr verified;
      sb := !sb + o.osize;
      sr := !sr + o.oring;
      se := !se + o.oecc;
      if o.oring < !minr then minr := o.oring)
    out;
  let bound = length_bound p f in
  let bound_ok =
    if bound < 0 then 0
    else
      Array.fold_left (fun acc o -> if o.oring >= bound then acc + 1 else acc) 0 out
  in
  let tf = float_of_int trials in
  (* Steady-state allocation: the minimum across the point's trials.
     The OCaml runtime occasionally books a large nondeterministic
     allocation burst into one trial's window (a GC-internal artifact,
     not pipeline allocation — it appears and vanishes across identical
     reruns); the min is stable run to run and is exactly the "what
     does one more trial cost" figure the arena is accountable to. *)
  let steady a = Array.fold_left min a.(0) a in
  {
    f;
    trials;
    embedded = !embedded;
    verified = !verified;
    bound_applicable = (if bound < 0 then 0 else trials);
    bound_ok;
    mean_bstar_size = float_of_int !sb /. tf;
    mean_ring_length = float_of_int !sr /. tf;
    mean_ecc = float_of_int !se /. tf;
    min_ring_length = !minr;
    wall_s;
    minor_words_per_trial = steady minor;
    major_words_per_trial = steady major;
  }

let default_fault_counts = [ 1; 5; 10; 30; 50 ]

let run ?(domains = 1) ?(trials = 20) ?(seed = 0x5eed) ?fs ?(reuse = true) ~d
    ~n () =
  if trials < 1 then invalid_arg "Ffc.Campaign.run: trials < 1";
  if domains < 1 then invalid_arg "Ffc.Campaign.run: domains < 1";
  let p = W.params ~d ~n in
  let fs =
    match fs with
    | Some l ->
        List.iter
          (fun f ->
            if f < 0 || f > p.W.size then
              invalid_arg "Ffc.Campaign.run: fault count out of range")
          l;
        l
    | None -> List.filter (fun f -> f <= p.W.size) default_fault_counts
  in
  let wss =
    if reuse then
      Array.init
        (if domains <= 1 then 1 else min domains trials)
        (fun _ -> Workspace.create p)
    else [||]
  in
  List.map (fun f -> point ~domains ~trials ~seed ~wss ~p f) fs
