module W = Debruijn.Word

type point = {
  f : int;
  trials : int;
  embedded : int;
  verified : int;
  errors : int;
  bound_applicable : int;
  bound_ok : int;
  mean_bstar_size : float;
  mean_ring_length : float;
  mean_ecc : float;
  min_ring_length : int;
  wall_s : float;
  minor_words_per_trial : float;
  major_words_per_trial : float;
}

type outcome = { osize : int; oring : int; oecc : int; over : bool; oerr : bool }

let nothing = { osize = 0; oring = 0; oecc = 0; over = false; oerr = false }

(* Per-trial generators are substreams of (campaign seed, f, trial)
   alone — the same Rng.split scheme as Dhc.Campaign — so the fault
   samples, and hence every statistic except the wall/GC figures, are
   bit-identical at any ?domains and with or without workspace reuse. *)
let trial_rng ~seed ~f ~trial = Util.Rng.split seed ((1_000_003 * f) + trial)

let length_bound p f =
  if f >= 0 && f <= p.W.d - 2 then Some (p.W.size - (p.W.n * f))
  else if p.W.d = 2 && f = 1 then Some (p.W.size - (p.W.n + 1))
  else None

let run_trial ~p ~ws ~seed ~f trial =
  let rng = trial_rng ~seed ~f ~trial in
  let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
  (* R = 0…01, the thesis's distinguished node for Tables 2.1/2.2; when
     its necklace is faulty the embedding re-roots at the smallest live
     representative. *)
  match Embed.embed ~root_hint:1 ?ws p ~faults with
  | None -> nothing
  | Some e ->
      {
        osize = e.Embed.bstar.Bstar.size;
        oring = Embed.length e;
        oecc = e.Embed.modified.Spanning.tree.Spanning.ecc;
        over = Embed.verify ?ws e;
        oerr = false;
      }
  | exception Pipeline_error.Error _ ->
      (* A pipeline-stage invariant fired (see Pipeline_error): the
         trial is recorded as failed instead of aborting the sweep. *)
      { nothing with oerr = true }

let point ~domains ~trials ~seed ~(wss : Workspace.t array) ~p f =
  let t0 = (Unix.gettimeofday () [@lint.allow "R1 wall_s is a reported statistic, never branched on"]) in
  let out = Array.make trials nothing in
  let nworkers = if domains <= 1 then 1 else min domains trials in
  let minor = Array.make trials 0. in
  let major = Array.make trials 0. in
  (* Strided trial assignment, one workspace per worker: worker w runs
     trials w, w+nworkers, …  Outcomes land at their trial index, so
     aggregation order — and every derived statistic — is independent
     of scheduling.  GC counters are read per trial, in the trial's own
     domain (Gc.counters is domain-local). *)
  let worker w =
    let ws = if Array.length wss = 0 then None else Some wss.(w) in
    let i = ref w in
    while !i < trials do
      let m0, _, j0 = Gc.counters () in
      out.(!i) <- run_trial ~p ~ws ~seed ~f !i;
      let m1, _, j1 = Gc.counters () in
      minor.(!i) <- m1 -. m0;
      major.(!i) <- j1 -. j0;
      i := !i + nworkers
    done
  in
  if nworkers = 1 then worker 0
  else begin
    let spawned =
      List.init (nworkers - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
    in
    worker 0;
    List.iter Domain.join spawned
  end;
  let wall_s = (Unix.gettimeofday () [@lint.allow "R1 wall_s is a reported statistic, never branched on"]) -. t0 in
  let embedded = ref 0 and verified = ref 0 and errors = ref 0 in
  let sb = ref 0 and sr = ref 0 and se = ref 0 in
  let minr = ref max_int in
  Array.iter
    (fun o ->
      if o.osize > 0 then incr embedded;
      if o.over then incr verified;
      if o.oerr then incr errors;
      sb := !sb + o.osize;
      sr := !sr + o.oring;
      se := !se + o.oecc;
      if o.oring < !minr then minr := o.oring)
    out;
  let bound = length_bound p f in
  let bound_ok =
    match bound with
    | None -> 0
    | Some b ->
        Array.fold_left (fun acc o -> if o.oring >= b then acc + 1 else acc) 0 out
  in
  let tf = float_of_int trials in
  (* Steady-state allocation: the minimum across the point's trials.
     The OCaml runtime occasionally books a large nondeterministic
     allocation burst into one trial's window (a GC-internal artifact,
     not pipeline allocation — it appears and vanishes across identical
     reruns); the min is stable run to run and is exactly the "what
     does one more trial cost" figure the arena is accountable to. *)
  let steady a = Array.fold_left min a.(0) a in
  {
    f;
    trials;
    embedded = !embedded;
    verified = !verified;
    errors = !errors;
    bound_applicable = (if Option.is_none bound then 0 else trials);
    bound_ok;
    mean_bstar_size = float_of_int !sb /. tf;
    mean_ring_length = float_of_int !sr /. tf;
    mean_ecc = float_of_int !se /. tf;
    min_ring_length = !minr;
    wall_s;
    minor_words_per_trial = steady minor;
    major_words_per_trial = steady major;
  }

let default_fault_counts = [ 1; 5; 10; 30; 50 ]

(* ------------------------------------------------------------------ *)
(* churn mode: Live under a fault/repair birth-death process            *)

type churn_point = {
  target_f : int;
  ctrials : int;
  events : int;
  cfaults : int;
  crepairs : int;
  patched : int;
  recomputed : int;
  cunchanged : int;
  cerrors : int;
  mean_ring_length : float;
  min_ring_length : int;
  mean_live_faults : float;
  cwall_s : float;
  median_event_s : float;
  max_event_s : float;
  minor_words_per_event : float;
  major_words_per_event : float;
}

type churn_out = {
  zring : int;
  zfend : int;
  zfev : int;
  zrev : int;
  zpat : int;
  zrec : int;
  zunc : int;
  zerr : bool;
}

let churn_nothing =
  { zring = 0; zfend = 0; zfev = 0; zrev = 0; zpat = 0; zrec = 0; zunc = 0;
    zerr = true }

(* One trial: [events] steps of a birth-death chain around [target]
   outstanding faults (fault with probability target/(target + f),
   repair of a uniform outstanding fault otherwise), driven through one
   [Live.t].  The event stream is a pure function of (seed, target,
   trial), so every outcome statistic is domain- and reuse-independent;
   only the per-event wall clocks in [ev_wall] are not. *)
let churn_trial ~p ~ws ~seed ~target ~events ~ev_wall trial =
  let rng = trial_rng ~seed ~f:target ~trial in
  let live = Live.create ~root_hint:1 ?ws p ~faults:[] in
  let active = ref (Array.make 16 0) in
  let f = ref 0 in
  let base = trial * events in
  match
    for e = 0 to events - 1 do
      let do_fault =
        !f < p.W.size && (!f = 0 || Util.Rng.int rng (target + !f) < target)
      in
      let ev =
        if do_fault then begin
          let v = ref (Util.Rng.int rng p.W.size) in
          while Live.is_faulty live !v do
            v := Util.Rng.int rng p.W.size
          done;
          if !f = Array.length !active then begin
            let b = Array.make (2 * !f) 0 in
            Array.blit !active 0 b 0 !f;
            active := b
          end;
          !active.(!f) <- !v;
          incr f;
          Live.Fault !v
        end
        else begin
          let i = Util.Rng.int rng !f in
          let v = !active.(i) in
          decr f;
          !active.(i) <- !active.(!f);
          Live.Repair v
        end
      in
      let t0 = (Unix.gettimeofday () [@lint.allow "R1 per-event latency is a reported statistic, never branched on"]) in
      (match Live.apply live ev with
      | Ok _ -> ()
      | Error _ ->
          (* unreachable: the chain only faults healthy nodes and only
             repairs outstanding ones — recorded, not crashed on *)
          Pipeline_error.raise_error ~stage:"Campaign"
            "churn event rejected by Live");
      ev_wall.(base + e) <- (Unix.gettimeofday () [@lint.allow "R1 per-event latency is a reported statistic, never branched on"]) -. t0
    done
  with
  | () ->
      let s = Live.stats live in
      {
        zring = Live.ring_length live;
        zfend = Live.fault_count live;
        zfev = s.Live.fault_events;
        zrev = s.Live.repair_events;
        zpat = s.Live.patched;
        zrec = s.Live.recomputed;
        zunc = s.Live.unchanged;
        zerr = false;
      }
  | exception Pipeline_error.Error _ -> churn_nothing

let churn_point ~domains ~trials ~seed ~events ~(wss : Workspace.t array) ~p
    target =
  let t0 = (Unix.gettimeofday () [@lint.allow "R1 wall_s is a reported statistic, never branched on"]) in
  let out = Array.make trials churn_nothing in
  let nworkers = if domains <= 1 then 1 else min domains trials in
  let ev_wall = Array.make (trials * events) 0. in
  let minor = Array.make trials 0. in
  let major = Array.make trials 0. in
  let worker w =
    let ws = if Array.length wss = 0 then None else Some wss.(w) in
    let i = ref w in
    while !i < trials do
      let m0, _, j0 = Gc.counters () in
      out.(!i) <- churn_trial ~p ~ws ~seed ~target ~events ~ev_wall !i;
      let m1, _, j1 = Gc.counters () in
      minor.(!i) <- (m1 -. m0) /. float_of_int events;
      major.(!i) <- (j1 -. j0) /. float_of_int events;
      i := !i + nworkers
    done
  in
  if nworkers = 1 then worker 0
  else begin
    let spawned =
      List.init (nworkers - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
    in
    worker 0;
    List.iter Domain.join spawned
  end;
  let cwall_s = (Unix.gettimeofday () [@lint.allow "R1 wall_s is a reported statistic, never branched on"]) -. t0 in
  let cfaults = ref 0 and crepairs = ref 0 and cerrors = ref 0 in
  let pat = ref 0 and rec_ = ref 0 and unc = ref 0 in
  let sring = ref 0 and sfend = ref 0 in
  let minr = ref max_int in
  Array.iter
    (fun o ->
      cfaults := !cfaults + o.zfev;
      crepairs := !crepairs + o.zrev;
      pat := !pat + o.zpat;
      rec_ := !rec_ + o.zrec;
      unc := !unc + o.zunc;
      if o.zerr then incr cerrors;
      sring := !sring + o.zring;
      sfend := !sfend + o.zfend;
      if o.zring < !minr then minr := o.zring)
    out;
  (* latency spread over the successful trials' events only (an aborted
     trial leaves untouched zero slots behind) *)
  let ok_trials = trials - !cerrors in
  let lat = Array.make (max 1 (ok_trials * events)) 0. in
  let li = ref 0 in
  Array.iteri
    (fun i o ->
      if not o.zerr then begin
        Array.blit ev_wall (i * events) lat (!li * events) events;
        incr li
      end)
    out;
  Array.sort Float.compare lat;
  let nlat = ok_trials * events in
  let median_event_s = if nlat = 0 then 0. else lat.(nlat / 2) in
  let max_event_s = if nlat = 0 then 0. else lat.(nlat - 1) in
  let steady a = Array.fold_left min a.(0) a in
  let tf = float_of_int trials in
  {
    target_f = target;
    ctrials = trials;
    events;
    cfaults = !cfaults;
    crepairs = !crepairs;
    patched = !pat;
    recomputed = !rec_;
    cunchanged = !unc;
    cerrors = !cerrors;
    mean_ring_length = float_of_int !sring /. tf;
    min_ring_length = !minr;
    mean_live_faults = float_of_int !sfend /. tf;
    cwall_s;
    median_event_s;
    max_event_s;
    minor_words_per_event = steady minor;
    major_words_per_event = steady major;
  }

let churn ?(domains = 1) ?(trials = 10) ?(seed = 0x5eed) ?targets
    ?(events = 100) ?(reuse = true) ~d ~n () =
  if trials < 1 then invalid_arg "Ffc.Campaign.churn: trials < 1";
  if domains < 1 then invalid_arg "Ffc.Campaign.churn: domains < 1";
  if events < 1 then invalid_arg "Ffc.Campaign.churn: events < 1";
  let p = W.params ~d ~n in
  let targets =
    match targets with
    | Some l ->
        List.iter
          (fun t ->
            if t < 1 || t > p.W.size then
              invalid_arg "Ffc.Campaign.churn: target out of range")
          l;
        l
    | None -> List.filter (fun t -> t <= p.W.size) default_fault_counts
  in
  let wss =
    if reuse then
      Array.init
        (if domains <= 1 then 1 else min domains trials)
        (fun _ -> Workspace.create p)
    else [||]
  in
  List.map (fun t -> churn_point ~domains ~trials ~seed ~events ~wss ~p t) targets

let run ?(domains = 1) ?(trials = 20) ?(seed = 0x5eed) ?fs ?(reuse = true) ~d
    ~n () =
  if trials < 1 then invalid_arg "Ffc.Campaign.run: trials < 1";
  if domains < 1 then invalid_arg "Ffc.Campaign.run: domains < 1";
  let p = W.params ~d ~n in
  let fs =
    match fs with
    | Some l ->
        List.iter
          (fun f ->
            if f < 0 || f > p.W.size then
              invalid_arg "Ffc.Campaign.run: fault count out of range")
          l;
        l
    | None -> List.filter (fun f -> f <= p.W.size) default_fault_counts
  in
  let wss =
    if reuse then
      Array.init
        (if domains <= 1 then 1 else min domains trials)
        (fun _ -> Workspace.create p)
    else [||]
  in
  List.map (fun f -> point ~domains ~trials ~seed ~wss ~p f) fs
