module W = Debruijn.Word
module Fa = Graphlib.Flatarr
module Sched = Graphlib.Sched

type t = {
  bstar : Bstar.t;
  modified : Spanning.modified;
  successor : Fa.t;
  cycle : int array;
}

let successor_map ?domains ?ws (m : Spanning.modified) =
  let bstar = m.Spanning.tree.Spanning.adj.Adjacency.bstar in
  let p = bstar.Bstar.p in
  let in_bstar = bstar.Bstar.in_bstar in
  let override = m.Spanning.succ_override in
  let succ =
    match ws with
    | None -> Fa.make p.W.size (-1)
    | Some w ->
        Workspace.check w p;
        Fa.fill w.Workspace.successor (-1);
        w.Workspace.successor
  in
  (* One flat pass: exit nodes of D-edges jump to the recorded entry
     node, everyone else follows its necklace (rotate left, inlined:
     W.rotl without the per-call range check).  Each slot is written
     once with a value depending only on read-only inputs, so chunking
     the pass across the work-stealing pool is trivially
     deterministic. *)
  let d = p.W.d in
  let stride = p.W.size / d in
  let fill lo hi =
    for x = lo to hi - 1 do
      if in_bstar.{x} <> 0 then
        succ.{x} <-
          (if override.{x} >= 0 then override.{x}
           else (x mod stride * d) + (x / stride))
    done
  in
  (match domains with
  | Some k when k > 1 && p.W.size >= Graphlib.Itopo.par_threshold ->
      Sched.with_pool ~domains:k (fun pool ->
          Sched.parallel_for pool ~chunk:Graphlib.Itopo.chunk_size ~lo:0
            ~hi:p.W.size
            (fun _ clo chi ->
              (fill clo chi
              [@lint.par_write
                "fill writes succ.{x} only for x in [clo, chi) — the \
                 chunk range itself — from read-only in_bstar/override"])))
  | _ -> fill 0 p.W.size);
  succ

(* One deduplicated closure check for both allocation paths: [None]
   from the walk means the successor map did not close into a simple
   cycle covering B* — impossible by Proposition 2.1 on a well-formed
   B*, so surface it as the typed recoverable error rather than a
   process-killing [failwith]. *)
let close_cycle ?ws bstar successor =
  let walked =
    match ws with
    | None -> Graphlib.Cycle.of_successor_flat_n ~start:bstar.Bstar.root successor
    | Some w ->
        Option.map
          (fun len -> Fa.sub_to_array w.Workspace.cycle_buf 0 len)
          (Graphlib.Cycle.of_successor_flat_into ~seen:w.Workspace.cycle_seen
             ~buf:w.Workspace.cycle_buf ~start:bstar.Bstar.root successor)
  in
  match walked with
  | Some c -> c
  | None ->
      Pipeline_error.raise_error ~stage:"Embed"
        "successor map did not close into a cycle"

let of_bstar ?domains ?ws bstar =
  let adj = Adjacency.build ?ws bstar in
  let tree = Spanning.build ?domains ?ws adj in
  let modified = Spanning.modify ?ws tree in
  let successor = successor_map ?domains ?ws modified in
  (* The ring is the trial's one fresh result either way — everything
     feeding it lives in the workspace when [?ws] is given. *)
  let cycle = close_cycle ?ws bstar successor in
  { bstar; modified; successor; cycle }

let embed ?root_hint ?domains ?ws p ~faults =
  Option.map (of_bstar ?domains ?ws) (Bstar.compute ?root_hint ?domains ?ws p ~faults)

let verify ?ws t =
  let b = t.bstar in
  let p = b.Bstar.p in
  let k = Array.length t.cycle in
  k = b.Bstar.size && k > 0
  &&
  (* Arithmetic Hamiltonicity: the cycle is simple, covers exactly B*,
     avoids faulty necklaces, and every consecutive pair (wrap
     included) is a De Bruijn edge — x → y iff prefix y = suffix x.
     No Digraph is forced even at B(2,22). *)
  let seen =
    match ws with
    | None -> Graphlib.Bitset.create p.W.size
    | Some w ->
        Workspace.check w p;
        Graphlib.Bitset.clear w.Workspace.cycle_seen;
        w.Workspace.cycle_seen
  in
  let in_bstar = b.Bstar.in_bstar in
  let necklace_faulty = b.Bstar.necklace_faulty in
  let ok = ref true in
  for i = 0 to k - 1 do
    let x = t.cycle.(i) in
    if
      x < 0 || x >= p.W.size
      || in_bstar.{x} = 0
      || necklace_faulty.{x} <> 0
      || Graphlib.Bitset.mem seen x
    then ok := false
    else begin
      Graphlib.Bitset.add seen x;
      let y = t.cycle.((i + 1) mod k) in
      if y < 0 || y >= p.W.size || W.prefix p y <> W.suffix p x then ok := false
    end
  done;
  !ok

let length t = Array.length t.cycle

let length_lower_bound p f = p.W.size - (p.W.n * f)

let worst_case_faults p f =
  (* Prop 2.2's adversarial family puts each fault on its own
     full-length necklace; with f > d − 2 the proposition's guarantee
     (and the dⁿ − nf = length argument of §2.5) no longer applies, so
     larger f would silently produce a pack with no worst-case
     meaning. *)
  if f < 0 || f > p.W.d - 2 then invalid_arg "Embed.worst_case_faults";
  (* α^{n−1}(d−1): digits α,…,α followed by d−1. *)
  List.init f (fun a ->
      let digits = Array.make p.W.n a in
      digits.(p.W.n - 1) <- p.W.d - 1;
      W.encode p digits)
