module W = Debruijn.Word

type t = {
  bstar : Bstar.t;
  modified : Spanning.modified;
  successor : int array;
  cycle : int array;
}

let successor_map (m : Spanning.modified) =
  let adj = m.Spanning.tree.Spanning.adj in
  let bstar = adj.Adjacency.bstar in
  let p = bstar.Bstar.p in
  let succ = Array.make p.W.size (-1) in
  for x = 0 to p.W.size - 1 do
    if bstar.Bstar.in_bstar.(x) then begin
      let w = W.suffix p x in
      let idx = adj.Adjacency.idx_of_node.(x) in
      match Hashtbl.find_opt m.Spanning.out_edge (idx, w) with
      | Some next_idx -> (
          match Adjacency.node_with_prefix adj next_idx w with
          | Some target -> succ.(x) <- target
          | None -> assert false)
      | None -> succ.(x) <- W.rotl p x
    end
  done;
  succ

let of_bstar bstar =
  let adj = Adjacency.build bstar in
  let tree = Spanning.build adj in
  let modified = Spanning.modify tree in
  let successor = successor_map modified in
  let cycle =
    match
      Graphlib.Cycle.of_successor_map ~start:bstar.Bstar.root (fun v -> successor.(v))
    with
    | Some c -> c
    | None -> failwith "Ffc.Embed: successor map did not close into a cycle"
  in
  { bstar; modified; successor; cycle }

let embed ?root_hint p ~faults =
  Option.map of_bstar (Bstar.compute ?root_hint p ~faults)

let verify t =
  let bstar = t.bstar in
  Graphlib.Cycle.is_hamiltonian bstar.Bstar.graph
    ~subset:(fun v -> bstar.Bstar.in_bstar.(v))
    t.cycle
  && Graphlib.Cycle.avoids_nodes t.cycle (fun v -> bstar.Bstar.necklace_faulty.(v))

let length t = Array.length t.cycle

let length_lower_bound p f = p.W.size - (p.W.n * f)

let worst_case_faults p f =
  (* Prop 2.2's adversarial family puts each fault on its own
     full-length necklace; with f > d − 2 the proposition's guarantee
     (and the dⁿ − nf = length argument of §2.5) no longer applies, so
     larger f would silently produce a pack with no worst-case
     meaning. *)
  if f < 0 || f > p.W.d - 2 then invalid_arg "Embed.worst_case_faults";
  (* α^{n−1}(d−1): digits α,…,α followed by d−1. *)
  List.init f (fun a ->
      let digits = Array.make p.W.n a in
      digits.(p.W.n - 1) <- p.W.d - 1;
      W.encode p digits)
